//! Crash-matrix tests for the durable storage subsystem.
//!
//! The invariant under test: **a database killed at any injected fault
//! point recovers to a state bit-identical to an in-memory replay of the
//! statement prefix recovery claims** — and that claimed prefix is always
//! a record-aligned prefix of what was actually written. The oracle is
//! the PR 3 differential pattern: the same statements through a fresh
//! `ClausalDatabase`, compared on the whole observable surface (clause
//! set, update count, history, name table).
//!
//! Faults are injected with the deterministic SplitMix64-seeded helpers
//! of `pwdb::store::fault`: torn tails at arbitrary byte offsets, single
//! bit flips at controlled positions, truncations, corrupt and leftover
//! temporary snapshot files. Set `PWDB_STORE_FAULT_CASES` to scale the
//! seeded matrix (default 24 cases per matrix test).

use pwdb::hlu::{ClausalDatabase, DurableDatabase, HluProgram};
use pwdb::logic::{AtomId, AtomTable, Rng};
use pwdb::store::fault;
use pwdb::store::{Record, TestDir};
use pwdb_suite::testgen;

const N_ATOMS: usize = 5;

fn fault_cases() -> usize {
    std::env::var("PWDB_STORE_FAULT_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24)
}

/// Generates a seeded script of HLU programs over `N_ATOMS` atoms.
fn script(rng: &mut Rng, len: usize) -> Vec<HluProgram> {
    (0..len)
        .map(|_| testgen::hlu_program(rng, N_ATOMS))
        .collect()
}

/// `(clear [A1 … A5])` — semantically near-trivial, but it references the
/// whole vocabulary, forcing every `A` record into the log. Used as a
/// script prologue by tests that hand-craft unacknowledged tail records
/// (whose statements must parse against an already-complete name table).
fn clear_all() -> HluProgram {
    HluProgram::Clear((0..N_ATOMS as u32).map(AtomId).collect())
}

/// Runs `programs` through a fresh in-memory database — the oracle.
fn oracle(programs: &[HluProgram]) -> ClausalDatabase {
    let mut db = ClausalDatabase::new();
    for p in programs {
        db.run(p);
    }
    db
}

/// Asserts the recovered database is bit-identical to the in-memory
/// oracle over `programs`: same clause set, same counters, same history,
/// same vocabulary.
fn assert_identical(recovered: &DurableDatabase, programs: &[HluProgram]) {
    let reference = oracle(programs);
    assert_eq!(recovered.state(), reference.state(), "clause sets differ");
    assert_eq!(recovered.updates_run(), programs.len());
    assert_eq!(recovered.history(), programs, "histories differ");
    // Auto-named atoms must come back with their default names, at their
    // original dense ids.
    for (id, name) in recovered.atoms().iter() {
        assert_eq!(name, id.default_name(), "atom names differ");
    }
}

/// Writes `programs` durably into `dir`, committing each; returns the
/// WAL length in bytes at close (= the last commit point).
fn write_committed(dir: &TestDir, programs: &[HluProgram]) -> u64 {
    let mut db = ClausalDatabase::open(dir.path()).unwrap();
    for p in programs {
        db.run(p).unwrap();
    }
    db.store_stats().wal_bytes
}

fn wal_path(dir: &TestDir) -> std::path::PathBuf {
    dir.path().join("wal.log")
}

#[test]
fn clean_reopen_recovers_everything() {
    let mut rng = Rng::new(0x5704E);
    for case in 0..fault_cases() {
        let dir = TestDir::new("rec-clean");
        let len = rng.range_usize(1, 12);
        let programs = script(&mut rng, len);
        write_committed(&dir, &programs);
        let db = ClausalDatabase::open(dir.path()).unwrap();
        assert_identical(&db, &programs);
        assert_eq!(db.recovery_report().truncated_bytes, 0, "case {case}");
    }
}

/// Kill-point: mid-record. A torn tail at every possible byte offset of
/// the last record must recover exactly the committed prefix.
#[test]
fn torn_mid_record_recovers_the_prefix() {
    let mut rng = Rng::new(0x7EA7);
    let dir = TestDir::new("rec-torn");
    let programs = script(&mut rng, 6);
    let committed = write_committed(&dir, &programs[..5]);

    // Hand-craft the unacked suffix: the encoded record of one more
    // statement, torn at every cut point.
    let atoms = AtomTable::with_indexed_atoms(N_ATOMS);
    let text = programs[5].display(&atoms).to_string();
    let encoded = Record::Stmt(text).encode();
    for cut in 1..encoded.len() {
        fault::truncate_file(&wal_path(&dir), committed).unwrap();
        fault::append_raw(&wal_path(&dir), &encoded[..cut]).unwrap();
        let db = ClausalDatabase::open(dir.path()).unwrap();
        assert_identical(&db, &programs[..5]);
        assert_eq!(db.recovery_report().truncated_bytes, cut as u64);
        // Recovery physically truncated the torn tail.
        let len = std::fs::metadata(wal_path(&dir)).unwrap().len();
        assert_eq!(len, committed, "cut {cut}");
    }
}

/// Kill-point: post-record, pre-fsync-acknowledgement. A record that is
/// intact on disk but was never acknowledged IS replayed — legitimate
/// WAL semantics; the comparison uses what recovery claims.
#[test]
fn intact_unacked_record_is_replayed() {
    let mut rng = Rng::new(0xACED);
    let dir = TestDir::new("rec-unacked");
    let mut programs = vec![clear_all()];
    programs.extend(script(&mut rng, 4));
    write_committed(&dir, &programs[..4]);

    let atoms = AtomTable::with_indexed_atoms(N_ATOMS);
    let text = programs[4].display(&atoms).to_string();
    fault::append_raw(&wal_path(&dir), &Record::Stmt(text).encode()).unwrap();

    let db = ClausalDatabase::open(dir.path()).unwrap();
    assert_identical(&db, &programs); // all 5, including the unacked one
    assert_eq!(db.recovery_report().truncated_bytes, 0);
}

/// Kill-point: bit rot in the unacked tail. The checksum catches the
/// flip and recovery falls back to the committed prefix.
#[test]
fn bit_flip_in_unacked_tail_is_detected() {
    let mut rng = Rng::new(0xB17F);
    for case in 0..fault_cases() {
        let dir = TestDir::new("rec-flip");
        let mut programs = vec![clear_all()];
        let len = rng.range_usize(2, 8);
        programs.extend(script(&mut rng, len));
        let n = programs.len();
        let committed = write_committed(&dir, &programs[..n - 1]);

        let atoms = AtomTable::with_indexed_atoms(N_ATOMS);
        let text = programs[n - 1].display(&atoms).to_string();
        fault::append_raw(&wal_path(&dir), &Record::Stmt(text).encode()).unwrap();
        let (offset, bit) =
            fault::flip_random_bit_after(&wal_path(&dir), committed, &mut rng).unwrap();

        let db = ClausalDatabase::open(dir.path()).unwrap();
        assert_identical(&db, &programs[..n - 1]);
        assert!(
            db.recovery_report().truncated_bytes > 0,
            "case {case}: flip at ({offset},{bit}) went undetected"
        );
    }
}

/// Kill-point: mid-snapshot. A corrupt newest snapshot is skipped;
/// recovery falls back to an older snapshot or to full log replay, and
/// the result is identical either way.
#[test]
fn corrupt_snapshot_falls_back() {
    let mut rng = Rng::new(0x54AB);
    let dir = TestDir::new("rec-snap");
    let programs = script(&mut rng, 8);
    {
        let mut db = ClausalDatabase::open(dir.path()).unwrap();
        for p in &programs[..3] {
            db.run(p).unwrap();
        }
        db.checkpoint().unwrap(); // older, intact snapshot
        for p in &programs[3..] {
            db.run(p).unwrap();
        }
        let (newest, _) = db.checkpoint().unwrap();
        // Corrupt the newest snapshot body.
        fault::flip_random_bit_after(&newest, 16, &mut rng).unwrap();
    }
    {
        let db = ClausalDatabase::open(dir.path()).unwrap();
        assert_identical(&db, &programs);
        let r = db.recovery_report();
        assert_eq!(r.snapshots_skipped, 1);
        assert_eq!((r.from_snapshot, r.replayed), (3, 5)); // older snapshot won
    }
    // Corrupt the older snapshot too: full replay from an empty state.
    for entry in std::fs::read_dir(dir.path()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "pwdb") {
            fault::flip_random_bit_after(&path, 16, &mut rng).unwrap();
        }
    }
    let db = ClausalDatabase::open(dir.path()).unwrap();
    assert_identical(&db, &programs);
    let r = db.recovery_report();
    assert_eq!(r.snapshots_skipped, 2);
    assert_eq!((r.from_snapshot, r.replayed), (0, 8));
}

/// A snapshot left behind as a `.tmp-` file (crash mid-checkpoint,
/// before the atomic rename) is invisible to recovery.
#[test]
fn leftover_tmp_snapshot_is_ignored() {
    let mut rng = Rng::new(0x73A9);
    let dir = TestDir::new("rec-tmp");
    let programs = script(&mut rng, 4);
    write_committed(&dir, &programs);
    std::fs::write(
        dir.path().join("tmp-snap-0000000000000099.pwdb"),
        b"half-written garbage",
    )
    .unwrap();
    std::fs::write(dir.path().join(".tmp-snap"), b"more garbage").unwrap();
    let db = ClausalDatabase::open(dir.path()).unwrap();
    assert_identical(&db, &programs);
    assert_eq!(db.recovery_report().snapshots_skipped, 0);
}

/// Kill-point: stale snapshot + long log suffix. Replay picks up exactly
/// where the snapshot's coverage ends.
#[test]
fn stale_snapshot_with_long_log() {
    let mut rng = Rng::new(0x57A1E);
    let dir = TestDir::new("rec-stale");
    let programs = script(&mut rng, 20);
    {
        let mut db = ClausalDatabase::open(dir.path()).unwrap();
        for p in &programs[..2] {
            db.run(p).unwrap();
        }
        db.checkpoint().unwrap();
        for p in &programs[2..] {
            db.run(p).unwrap();
        }
    }
    let db = ClausalDatabase::open(dir.path()).unwrap();
    assert_identical(&db, &programs);
    let r = db.recovery_report();
    assert_eq!((r.from_snapshot, r.replayed), (2, 18));
}

/// Named atoms (not the default `A<i>` vocabulary) survive the round
/// trip: ids are reassigned by replaying `A` records in file order.
#[test]
fn named_atoms_round_trip() {
    let dir = TestDir::new("rec-names");
    {
        let mut db = ClausalDatabase::open(dir.path()).unwrap();
        db.run_statement("(insert {rain | snow})").unwrap();
        db.run_statement("(where {snow} (insert {plows'}) (delete {de_ice}))")
            .unwrap();
        db.checkpoint().unwrap();
        db.run_statement("(assert {!rain})").unwrap();
    }
    let mut db = ClausalDatabase::open(dir.path()).unwrap();
    let names: Vec<String> = db.atoms().iter().map(|(_, n)| n.to_owned()).collect();
    assert_eq!(names, ["rain", "snow", "plows'", "de_ice"]);
    assert_eq!(db.updates_run(), 3);
    let q = pwdb::logic::parse_wff("snow -> plows'", db.atoms_mut()).unwrap();
    assert!(db.is_certain(&q));
}

/// The seeded matrix: random scripts, random kill points (tear or bit
/// flip at a random offset beyond a random commit point). Recovery must
/// land on a *record-aligned prefix* of the written statements, and be
/// bit-identical to the oracle over that prefix.
#[test]
fn seeded_crash_matrix() {
    let mut rng = Rng::new(0xC4A5);
    for case in 0..fault_cases() {
        let dir = TestDir::new("rec-matrix");
        let len = rng.range_usize(3, 14);
        let programs = script(&mut rng, len);

        // Record the WAL length after every commit — the legal recovery
        // points.
        let mut commit_points = Vec::with_capacity(programs.len());
        {
            let mut db = ClausalDatabase::open(dir.path()).unwrap();
            for p in &programs {
                db.run(p).unwrap();
                commit_points.push(db.store_stats().wal_bytes);
            }
        }

        // Inject one fault somewhere beyond a random non-final commit
        // point (past the last one there is nothing to damage).
        let k = rng.index(commit_points.len() - 1);
        let from = commit_points[k];
        let flipped = if rng.coin() {
            fault::tear_randomly_after(&wal_path(&dir), from, &mut rng).unwrap();
            false
        } else {
            fault::flip_random_bit_after(&wal_path(&dir), from, &mut rng).unwrap();
            true
        };

        let db = ClausalDatabase::open(dir.path()).unwrap();
        // Recovery claims some prefix; it must be at least the statements
        // committed before the fault region, and a true prefix of the
        // script.
        let recovered = db.updates_run();
        assert!(
            recovered > k && recovered <= programs.len(),
            "case {case}: recovered {recovered} not in [{}, {}] (flip={flipped})",
            k + 1,
            programs.len()
        );
        assert_identical(&db, &programs[..recovered]);

        // And the truncated log must survive a second clean reopen.
        drop(db);
        let db = ClausalDatabase::open(dir.path()).unwrap();
        assert_eq!(db.updates_run(), recovered);
        assert_eq!(db.recovery_report().truncated_bytes, 0, "case {case}");
    }
}

/// Durability composes with checkpoints under the matrix: a snapshot
/// mid-script plus a torn tail still recovers a record-aligned prefix
/// at least as long as the snapshot's coverage.
#[test]
fn seeded_crash_matrix_with_checkpoints() {
    let mut rng = Rng::new(0xC4A6);
    for case in 0..fault_cases() {
        let dir = TestDir::new("rec-matrix-ckpt");
        let len = rng.range_usize(4, 12);
        let programs = script(&mut rng, len);
        let ckpt_after = rng.range_usize(1, programs.len());

        let mut commit_points = Vec::with_capacity(programs.len());
        {
            let mut db = ClausalDatabase::open(dir.path()).unwrap();
            for (i, p) in programs.iter().enumerate() {
                db.run(p).unwrap();
                if i + 1 == ckpt_after {
                    db.checkpoint().unwrap();
                }
                commit_points.push(db.store_stats().wal_bytes);
            }
        }

        // Tear beyond a non-final commit point at or after the checkpoint
        // (faults before the snapshot's coverage are a different failure
        // class — media corruption of acknowledged data, not a crash).
        let k = rng.range_usize(ckpt_after - 1, commit_points.len() - 1);
        assert!(k + 1 < commit_points.len());
        fault::tear_randomly_after(&wal_path(&dir), commit_points[k], &mut rng).unwrap();

        let db = ClausalDatabase::open(dir.path()).unwrap();
        let recovered = db.updates_run();
        assert!(
            recovered > k && recovered <= programs.len(),
            "case {case}: recovered {recovered} not in [{}, {}]",
            k + 1,
            programs.len()
        );
        assert_identical(&db, &programs[..recovered]);
        assert!(db.recovery_report().from_snapshot <= recovered);
    }
}
