//! Program-level emulation: whole random BLU *programs* — not just
//! single operators — run in BLU-C and BLU-I produce states related by
//! `e_CI`. This is the homomorphism property of Definition 2.3.1 at full
//! strength: because `e_CI` respects every operator, it respects every
//! term built from them, which these tests confirm directly on deep
//! random terms with shared subexpressions.

use proptest::prelude::*;

use pwdb::blu::{
    clause_state_to_worlds, eval_sterm, BluClausal, BluInstance, Env, GenmaskStrategy, MTerm,
    Optimizer, STerm,
};
use pwdb::logic::{cnf_of, AtomId, ClauseSet, Wff};
use pwdb::worlds::WorldSet;

const N: usize = 4;

fn arb_wff(depth: u32) -> impl Strategy<Value = Wff> {
    let leaf = prop_oneof![
        (0..N as u32).prop_map(Wff::atom),
        (0..N as u32).prop_map(|a| Wff::atom(a).not()),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.implies(b)),
        ]
    })
}

fn arb_sterm() -> impl Strategy<Value = STerm> {
    let leaf = prop_oneof![
        Just(STerm::var("s0")),
        Just(STerm::var("s1")),
        Just(STerm::var("s2")),
    ];
    leaf.prop_recursive(5, 48, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.assert(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.combine(b)),
            inner.clone().prop_map(STerm::complement),
            (inner.clone(), inner.clone()).prop_map(|(a, g)| a.mask(g.genmask())),
            (inner.clone(), Just(MTerm::var("m0"))).prop_map(|(a, m)| a.mask(m)),
        ]
    })
}

fn run_both(
    term: &STerm,
    wffs: &[Wff; 3],
    mask_atoms: &[u32],
) -> (ClauseSet, WorldSet) {
    let names = ["s0", "s1", "s2"];
    let mask: std::collections::BTreeSet<AtomId> =
        mask_atoms.iter().map(|&a| AtomId(a)).collect();

    let clausal = BluClausal::new();
    let mut cenv: Env<BluClausal> = Env::new();
    for (name, w) in names.iter().zip(wffs) {
        cenv.bind_state(name, cnf_of(w));
    }
    cenv.bind_mask("m0", mask.clone());
    let c_out = eval_sterm(&clausal, term, &cenv).expect("bound");

    let instance = BluInstance::new(N);
    let mut ienv: Env<BluInstance> = Env::new();
    for (name, w) in names.iter().zip(wffs) {
        ienv.bind_state(name, WorldSet::from_wff(N, w));
    }
    ienv.bind_mask("m0", mask);
    let i_out = eval_sterm(&instance, term, &ienv).expect("bound");

    (c_out, i_out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The full homomorphism: e_CI(run_C(program)) = run_I(program) for
    /// deep random programs.
    #[test]
    fn whole_programs_emulate(
        term in arb_sterm(),
        w0 in arb_wff(2),
        w1 in arb_wff(2),
        w2 in arb_wff(1),
        mask_atoms in proptest::collection::vec(0..N as u32, 0..=2),
    ) {
        let (c_out, i_out) = run_both(&term, &[w0, w1, w2], &mask_atoms);
        prop_assert_eq!(
            clause_state_to_worlds(N, &c_out),
            i_out,
            "program {} diverged",
            term
        );
    }

    /// Optimized programs agree with unoptimized ones across BOTH
    /// algebras — the optimizer's soundness composed with the emulation.
    #[test]
    fn optimized_programs_emulate_too(
        term in arb_sterm(),
        w0 in arb_wff(2),
        w1 in arb_wff(1),
        w2 in arb_wff(1),
        mask_atoms in proptest::collection::vec(0..N as u32, 0..=2),
    ) {
        let (optimized, _) = Optimizer::new().optimize_term(&term);
        let wffs = [w0, w1, w2];
        let (_, i_raw) = run_both(&term, &wffs, &mask_atoms);
        let (c_opt, i_opt) = run_both(&optimized, &wffs, &mask_atoms);
        prop_assert_eq!(&i_raw, &i_opt, "optimizer changed meaning of {}", term);
        prop_assert_eq!(clause_state_to_worlds(N, &c_opt), i_raw);
    }

    /// The reduced (subsumption) and SAT-genmask clausal algebra agrees
    /// with the paper-exact one on whole programs, world-for-world.
    #[test]
    fn algebra_variants_agree_on_programs(
        term in arb_sterm(),
        w0 in arb_wff(2),
        w1 in arb_wff(1),
        w2 in arb_wff(1),
    ) {
        let names = ["s0", "s1", "s2"];
        let wffs = [w0, w1, w2];

        let exact = BluClausal::new();
        let tuned = BluClausal::new()
            .with_reduction(true)
            .with_genmask(GenmaskStrategy::SatBased);
        let mut env_a: Env<BluClausal> = Env::new();
        let mut env_b: Env<BluClausal> = Env::new();
        for (name, w) in names.iter().zip(&wffs) {
            env_a.bind_state(name, cnf_of(w));
            env_b.bind_state(name, cnf_of(w));
        }
        env_a.bind_mask("m0", [AtomId(0)].into_iter().collect());
        env_b.bind_mask("m0", [AtomId(0)].into_iter().collect());
        let a = eval_sterm(&exact, &term, &env_a).expect("bound");
        let b = eval_sterm(&tuned, &term, &env_b).expect("bound");
        prop_assert_eq!(
            clause_state_to_worlds(N, &a),
            clause_state_to_worlds(N, &b),
            "variants diverged on {}",
            term
        );
    }
}
