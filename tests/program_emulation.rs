//! Program-level emulation: whole random BLU *programs* — not just
//! single operators — run in BLU-C and BLU-I produce states related by
//! `e_CI`. This is the homomorphism property of Definition 2.3.1 at full
//! strength: because `e_CI` respects every operator, it respects every
//! term built from them, which these tests confirm directly on deep
//! random terms with shared subexpressions.
//!
//! Seeded deterministic loops stand in for the old proptest strategies.

use pwdb::blu::{
    clause_state_to_worlds, eval_sterm, BluClausal, BluInstance, Env, GenmaskStrategy, Optimizer,
    STerm,
};
use pwdb::logic::{cnf_of, AtomId, ClauseSet, Rng, Wff};
use pwdb::worlds::WorldSet;
use pwdb_suite::testgen;

const N: usize = 4;
const CASES: usize = 128;

fn arb_wff(rng: &mut Rng, depth: usize) -> Wff {
    testgen::wff(rng, N, depth)
}

fn arb_sterm(rng: &mut Rng) -> STerm {
    testgen::sterm(rng, 5, &["m0"])
}

fn arb_mask_atoms(rng: &mut Rng) -> Vec<u32> {
    (0..rng.range_usize(0, 3))
        .map(|_| rng.below(N as u64) as u32)
        .collect()
}

fn run_both(term: &STerm, wffs: &[Wff; 3], mask_atoms: &[u32]) -> (ClauseSet, WorldSet) {
    let names = ["s0", "s1", "s2"];
    let mask: std::collections::BTreeSet<AtomId> = mask_atoms.iter().map(|&a| AtomId(a)).collect();

    let clausal = BluClausal::new();
    let mut cenv: Env<BluClausal> = Env::new();
    for (name, w) in names.iter().zip(wffs) {
        cenv.bind_state(name, cnf_of(w));
    }
    cenv.bind_mask("m0", mask.clone());
    let c_out = eval_sterm(&clausal, term, &cenv).expect("bound");

    let instance = BluInstance::new(N);
    let mut ienv: Env<BluInstance> = Env::new();
    for (name, w) in names.iter().zip(wffs) {
        ienv.bind_state(name, WorldSet::from_wff(N, w));
    }
    ienv.bind_mask("m0", mask);
    let i_out = eval_sterm(&instance, term, &ienv).expect("bound");

    (c_out, i_out)
}

/// The full homomorphism: e_CI(run_C(program)) = run_I(program) for
/// deep random programs.
#[test]
fn whole_programs_emulate() {
    let mut rng = Rng::new(0x9E01);
    for _ in 0..CASES {
        let term = arb_sterm(&mut rng);
        let wffs = [
            arb_wff(&mut rng, 2),
            arb_wff(&mut rng, 2),
            arb_wff(&mut rng, 1),
        ];
        let mask_atoms = arb_mask_atoms(&mut rng);
        let (c_out, i_out) = run_both(&term, &wffs, &mask_atoms);
        assert_eq!(
            clause_state_to_worlds(N, &c_out),
            i_out,
            "program {term} diverged"
        );
    }
}

/// Optimized programs agree with unoptimized ones across BOTH algebras —
/// the optimizer's soundness composed with the emulation.
#[test]
fn optimized_programs_emulate_too() {
    let mut rng = Rng::new(0x9E02);
    for _ in 0..CASES {
        let term = arb_sterm(&mut rng);
        let wffs = [
            arb_wff(&mut rng, 2),
            arb_wff(&mut rng, 1),
            arb_wff(&mut rng, 1),
        ];
        let mask_atoms = arb_mask_atoms(&mut rng);
        let (optimized, _) = Optimizer::new().optimize_term(&term);
        let (_, i_raw) = run_both(&term, &wffs, &mask_atoms);
        let (c_opt, i_opt) = run_both(&optimized, &wffs, &mask_atoms);
        assert_eq!(&i_raw, &i_opt, "optimizer changed meaning of {term}");
        assert_eq!(clause_state_to_worlds(N, &c_opt), i_raw);
    }
}

/// The reduced (subsumption) and SAT-genmask clausal algebra agrees
/// with the paper-exact one on whole programs, world-for-world.
#[test]
fn algebra_variants_agree_on_programs() {
    let mut rng = Rng::new(0x9E03);
    for _ in 0..CASES {
        let term = arb_sterm(&mut rng);
        let wffs = [
            arb_wff(&mut rng, 2),
            arb_wff(&mut rng, 1),
            arb_wff(&mut rng, 1),
        ];
        let names = ["s0", "s1", "s2"];

        let exact = BluClausal::new();
        let tuned = BluClausal::new()
            .with_reduction(true)
            .with_genmask(GenmaskStrategy::SatBased);
        let mut env_a: Env<BluClausal> = Env::new();
        let mut env_b: Env<BluClausal> = Env::new();
        for (name, w) in names.iter().zip(&wffs) {
            env_a.bind_state(name, cnf_of(w));
            env_b.bind_state(name, cnf_of(w));
        }
        env_a.bind_mask("m0", [AtomId(0)].into_iter().collect());
        env_b.bind_mask("m0", [AtomId(0)].into_iter().collect());
        let a = eval_sterm(&exact, &term, &env_a).expect("bound");
        let b = eval_sterm(&tuned, &term, &env_b).expect("bound");
        assert_eq!(
            clause_state_to_worlds(N, &a),
            clause_state_to_worlds(N, &b),
            "variants diverged on {term}"
        );
    }
}
