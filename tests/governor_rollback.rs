//! The execution governor's end-to-end contract, on adversarial input.
//!
//! The corpus (`testgen::exponential_update_corpus`) is built from the
//! exponential prime-implicate family: each `(delete W)` statement
//! compiles to `(assert (mask s0 (genmask s1)) (complement s1))` and the
//! `complement` of `n` binary clauses plus one long clause is the
//! Θ(ε^L) product of Theorem 2.3.4(b) — ≈ `2^n · (n+1)` literals of work
//! at `n = 24`, far beyond any interactive budget.
//!
//! Three properties are pinned, per the governor's design:
//!
//! 1. **The corpus really is adversarial**: even a 10⁷-step budget — two
//!    orders of magnitude above the interactive budget used below — is
//!    exceeded. (Running ungoverned to completion would cost ≈ 8×10⁸
//!    steps; proving the threshold via a tripped 10⁷ budget keeps the
//!    test bounded.)
//! 2. **Budgets bound every statement**: under a 10⁵-step budget each
//!    corpus statement returns `BudgetExceeded` promptly, with bounded
//!    overshoot.
//! 3. **Failure is transactional**: after every failed statement the
//!    database — state, update count, history — is bit-identical to its
//!    pre-statement snapshot, under both engines, and a failed statement
//!    never reaches the WAL, so recovery reproduces exactly the committed
//!    prefix.

use pwdb::hlu::{ClausalDatabase, DurableError, GovernedError, HluProgram};
use pwdb::logic::{with_engine, Budget, EngineMode, ExecError, Limits, Resource};
use pwdb::store::TestDir;
use pwdb_suite::testgen;

/// 2^24 · 25 ≈ 4×10⁸ literal-steps of complement work per statement.
const N_PAIRS: usize = 24;
/// The interactive budget every statement must respect.
const TIGHT: u64 = 100_000;
/// The acceptance threshold the ungoverned corpus must exceed.
const THRESHOLD: u64 = 10_000_000;

fn corpus(count: usize) -> Vec<HluProgram> {
    testgen::exponential_update_corpus(N_PAIRS, count)
}

fn assert_steps_exceeded(err: &GovernedError, limit: u64) {
    match err {
        GovernedError::Exec(ExecError::BudgetExceeded {
            resource: Resource::Steps,
            spent,
            limit: l,
        }) => {
            assert_eq!(*l, limit);
            assert!(*spent > limit, "spent {spent} must exceed limit {limit}");
            // Overshoot is bounded by the largest single charge (one
            // clause-pair product), not by the blow-up.
            assert!(
                *spent < limit + 10_000,
                "overshoot must stay bounded: spent {spent} vs limit {limit}"
            );
        }
        other => panic!("expected BudgetExceeded(Steps), got {other:?}"),
    }
}

#[test]
fn corpus_exceeds_ten_million_steps_ungoverned() {
    for mode in [EngineMode::Naive, EngineMode::Indexed] {
        with_engine(mode, || {
            let mut db = ClausalDatabase::new();
            let limits = Limits::budget(Budget::steps(THRESHOLD));
            let err = db.run_governed(&corpus(1)[0], &limits).unwrap_err();
            assert_steps_exceeded(&err, THRESHOLD);
        });
    }
}

#[test]
fn tight_budget_bounds_every_statement_and_rolls_back() {
    for mode in [EngineMode::Naive, EngineMode::Indexed] {
        with_engine(mode, || {
            let mut db = ClausalDatabase::new();
            // Non-trivial pre-state so rollback has something to restore.
            db.run(&parse_stmt("(insert {A1 | A2})"));
            db.run(&parse_stmt("(assert {A3})"));
            let pre_state = db.state().clone();
            let pre_history = db.history().to_vec();
            let pre_updates = db.updates_run();

            let limits = Limits::budget(Budget::steps(TIGHT));
            for stmt in corpus(3) {
                let err = db.run_governed(&stmt, &limits).unwrap_err();
                assert_steps_exceeded(&err, TIGHT);
                assert_eq!(db.state(), &pre_state, "state must roll back ({mode:?})");
                assert_eq!(db.history(), &pre_history[..], "history must roll back");
                assert_eq!(db.updates_run(), pre_updates);
            }

            // The same budget is ample for ordinary statements: the
            // governed path still commits real work.
            db.run_governed(&parse_stmt("(delete {A2})"), &limits)
                .expect("benign statement commits under the same budget");
            assert_eq!(db.updates_run(), pre_updates + 1);
        });
    }
}

#[test]
fn live_clause_and_wall_clock_budgets_also_bound_the_corpus() {
    let mut db = ClausalDatabase::new();
    let limits = Limits::budget(Budget::unlimited().with_live_clauses(2_000));
    let err = db.run_governed(&corpus(1)[0], &limits).unwrap_err();
    match err {
        GovernedError::Exec(ExecError::BudgetExceeded {
            resource: Resource::LiveClauses,
            ..
        }) => {}
        other => panic!("expected BudgetExceeded(LiveClauses), got {other:?}"),
    }
    assert_eq!(db.updates_run(), 0);

    let limits = Limits::budget(Budget::unlimited().with_wall(std::time::Duration::from_millis(5)));
    let err = db.run_governed(&corpus(1)[0], &limits).unwrap_err();
    match err {
        GovernedError::Exec(ExecError::BudgetExceeded {
            resource: Resource::WallClockMs,
            ..
        }) => {}
        other => panic!("expected BudgetExceeded(WallClockMs), got {other:?}"),
    }
    assert_eq!(db.updates_run(), 0);
}

#[test]
fn durable_path_never_logs_failed_statements_and_recovery_matches() {
    let dir = TestDir::new("governor-durable-rollback");
    let committed = ["(insert {A1 | A2})", "(assert {A3})", "(delete {A2})"];
    {
        let mut db = ClausalDatabase::open(dir.path()).unwrap();
        db.run_statement(committed[0]).unwrap();
        db.run_statement(committed[1]).unwrap();

        let pre_state = db.state().clone();
        let pre_records = db.store_stats().wal_records;
        let limits = Limits::budget(Budget::steps(TIGHT));
        for stmt in corpus(2) {
            let err = db.run_governed(&stmt, &limits).unwrap_err();
            assert!(
                matches!(
                    err,
                    DurableError::Exec(ExecError::BudgetExceeded {
                        resource: Resource::Steps,
                        ..
                    })
                ),
                "{err:?}"
            );
            assert_eq!(db.state(), &pre_state, "memory must roll back");
            assert_eq!(
                db.store_stats().wal_records,
                pre_records,
                "a failed statement must never reach the WAL"
            );
        }

        // Governed success is logged like any committed statement.
        db.run_governed(&parse_stmt(committed[2]), &limits).unwrap();
    }

    // Recovery sees exactly the committed prefix.
    let recovered = ClausalDatabase::open(dir.path()).unwrap();
    assert_eq!(recovered.updates_run(), committed.len());

    let mut oracle = ClausalDatabase::new();
    let mut atoms = pwdb::logic::AtomTable::new();
    for text in committed {
        oracle.run(&pwdb::hlu::parse_hlu(text, &mut atoms).unwrap());
    }
    assert_eq!(recovered.state(), oracle.state());
    assert_eq!(recovered.history(), oracle.history());
}

/// Parses a statement over the default `A<i>` table.
fn parse_stmt(text: &str) -> HluProgram {
    let mut atoms = pwdb::logic::AtomTable::with_indexed_atoms(8);
    pwdb::hlu::parse_hlu(text, &mut atoms).unwrap()
}
