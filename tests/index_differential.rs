//! Differential oracle: the indexed clausal engine must be observably
//! identical to the naive reference engine.
//!
//! Every test runs the same seeded computation twice — once under
//! `EngineMode::Naive` (full-set scans, round-based closures, memo caches
//! bypassed) and once under `EngineMode::Indexed` (literal-occurrence
//! lists, signature filters, semi-naive worklists, interned-key memos) —
//! and asserts bit-identical results. Together the suites replay well
//! over 200 seeded programs: raw engine operations, all five BLU-C
//! primitives under the reduced algebra, full HLU scripts checked against
//! the possible-worlds backend, `Inset[Φ]` computations, and the
//! emulation squares of Theorems 2.3.4/2.3.6/2.3.9.

use std::collections::BTreeSet;

use pwdb::blu::{check_states, BluClausal, BluSemantics, GenmaskStrategy};
use pwdb::hlu::{ClausalDatabase, HluProgram, InstanceDatabase};
use pwdb::logic::resolution::saturate;
use pwdb::logic::subsumption::{insert_with_subsumption, merge_with_subsumption};
use pwdb::logic::{prime_implicates, with_engine, ClauseSet, EngineMode, Rng};
use pwdb::worlds::{inset, WorldSet};
use pwdb_suite::testgen;

const N_ATOMS: usize = 5;

/// Runs `f` under both engines and asserts the results agree; returns the
/// indexed result. The closure must be deterministic — it is evaluated
/// twice from the same inputs.
fn run_both<T: PartialEq + std::fmt::Debug>(ctx: &str, f: impl Fn() -> T) -> T {
    let naive = with_engine(EngineMode::Naive, &f);
    let indexed = with_engine(EngineMode::Indexed, &f);
    assert_eq!(naive, indexed, "engines diverged on {ctx}");
    indexed
}

/// Raw engine operations: subsumption reduction (result *and* drop
/// count), single insert (result and return flag), merge (result and
/// added count), saturation, and prime implicates.
#[test]
fn raw_operations_agree() {
    let mut rng = Rng::new(0xD1F1);
    for case in 0..64 {
        let a = testgen::clause_set(&mut rng, N_ATOMS, 8, 4);
        let b = testgen::clause_set(&mut rng, N_ATOMS, 5, 3);
        let c = testgen::clause(&mut rng, N_ATOMS, 4);

        run_both(&format!("reduce_subsumed #{case}"), || {
            let mut s = a.clone();
            let dropped = s.reduce_subsumed();
            (s, dropped)
        });
        run_both(&format!("insert_with_subsumption #{case}"), || {
            let mut s = a.clone();
            let added = insert_with_subsumption(&mut s, c.clone());
            (s, added)
        });
        run_both(&format!("merge_with_subsumption #{case}"), || {
            let mut s = a.clone();
            let added = merge_with_subsumption(&mut s, &b);
            (s, added)
        });
        run_both(&format!("saturate #{case}"), || saturate(&a));
        run_both(&format!("prime_implicates #{case}"), || {
            prime_implicates(&a)
        });
    }
}

/// All five BLU-C primitives under the optimized (reduced) algebra, with
/// both genmask strategies.
#[test]
fn blu_primitives_agree() {
    let mut rng = Rng::new(0xD1F2);
    for case in 0..48 {
        let x = testgen::clause_set(&mut rng, N_ATOMS, 5, 4);
        let y = testgen::clause_set(&mut rng, N_ATOMS, 4, 3);
        let m = testgen::mask(&mut rng, N_ATOMS, 2);
        for strategy in [GenmaskStrategy::PaperExhaustive, GenmaskStrategy::SatBased] {
            let alg = BluClausal::new()
                .with_reduction(true)
                .with_genmask(strategy);
            run_both(&format!("primitives #{case} {strategy:?}"), || {
                (
                    alg.op_assert(&x, &y),
                    alg.op_combine(&x, &y),
                    alg.op_complement(&x),
                    alg.op_mask(&x, &m),
                    alg.op_genmask(&y),
                )
            });
        }
    }
}

/// Full HLU scripts on the reduced clausal backend: both engines must
/// produce identical clause states and query answers at every step, and
/// each must still denote the same worlds as the instance-level backend
/// (the Theorem 3.1.4 soundness oracle).
#[test]
fn hlu_scripts_agree() {
    let mut rng = Rng::new(0xD1F3);
    for case in 0..48 {
        let script: Vec<HluProgram> = (0..rng.range_usize(1, 5))
            .map(|_| testgen::hlu_program(&mut rng, N_ATOMS))
            .collect();
        let queries: Vec<_> = (0..3).map(|_| testgen::wff(&mut rng, N_ATOMS, 2)).collect();

        let trace = run_both(&format!("hlu script #{case}"), || {
            let mut db = ClausalDatabase::new_reduced();
            let mut steps = Vec::new();
            for (i, prog) in script.iter().enumerate() {
                db.run(prog);
                if i % 2 == 1 {
                    db.normalize();
                }
                let answers: Vec<(bool, bool)> = queries
                    .iter()
                    .map(|q| (db.is_certain(q), db.is_possible(q)))
                    .collect();
                steps.push((db.state().clone(), answers));
            }
            steps
        });

        // The shared result must also be semantically right: replay the
        // script world-by-world and compare denotations.
        let mut instance = InstanceDatabase::with_atoms(N_ATOMS);
        for (prog, (state, _)) in script.iter().zip(&trace) {
            instance.run(prog);
            assert_eq!(
                &WorldSet::from_clauses(N_ATOMS, state),
                instance.state(),
                "case {case}: clausal state diverged from world semantics after {prog}"
            );
        }
    }
}

/// `Inset[Φ]` (Definition 1.4.4): the memoized indexed path and the
/// cache-bypassing naive path enumerate the same complete literal sets —
/// including on the second call, which the indexed engine answers from
/// the memo.
#[test]
fn inset_agrees() {
    let mut rng = Rng::new(0xD1F4);
    for case in 0..64 {
        let w = testgen::wff(&mut rng, N_ATOMS, 2);
        run_both(&format!("inset #{case}"), || {
            (inset(&w, N_ATOMS), inset(&w, N_ATOMS))
        });
    }
}

/// The emulation squares of Theorems 2.3.4, 2.3.6, and 2.3.9 hold under
/// both engines: every BLU-C operator commutes with `e_CI` into BLU-I no
/// matter which engine computes the clausal side.
#[test]
fn emulation_theorems_hold_under_both_engines() {
    let mut rng = Rng::new(0xD1F5);
    for case in 0..32 {
        let x = testgen::clause_set(&mut rng, N_ATOMS, 4, 4);
        let y = testgen::clause_set(&mut rng, N_ATOMS, 3, 3);
        let extra: BTreeSet<_> = testgen::mask(&mut rng, N_ATOMS, 2);
        let alg = BluClausal::new().with_reduction(true);
        for mode in [EngineMode::Naive, EngineMode::Indexed] {
            let report = with_engine(mode, || check_states(&alg, N_ATOMS, &x, &y, &extra));
            assert!(
                report.all_ok(),
                "case {case} under {mode:?}: {:?}",
                report.failures
            );
        }
    }
}

/// Empty and degenerate inputs take the indexed fast paths; make sure
/// they agree with the reference on them too.
#[test]
fn degenerate_inputs_agree() {
    let empty = ClauseSet::new();
    let contradiction: ClauseSet = [pwdb::logic::Clause::empty()].into_iter().collect();
    for (name, set) in [("empty", &empty), ("contradiction", &contradiction)] {
        run_both(&format!("saturate {name}"), || saturate(set));
        run_both(&format!("prime_implicates {name}"), || {
            prime_implicates(set)
        });
        run_both(&format!("reduce {name}"), || {
            let mut s = set.clone();
            let dropped = s.reduce_subsumed();
            (s, dropped)
        });
    }
}
