//! End-to-end observability: driving the public BLU/HLU APIs must light up
//! the corresponding metric families, and live snapshots must survive the
//! hand-written JSON round-trip. Gated on the `metrics` feature — under
//! `--no-default-features` the instrumentation is compiled out and this
//! binary is empty.
#![cfg(feature = "metrics")]

use std::collections::BTreeSet;

use pwdb::blu::{BluClausal, BluSemantics, GenmaskStrategy};
use pwdb::hlu::ClausalDatabase;
use pwdb::logic::{AtomId, Rng};
use pwdb_metrics::MetricsSnapshot;
use pwdb_suite::testgen;

/// Snapshot-delta around a workload. Tests in this binary run in
/// parallel against one global registry, so deltas may include other
/// tests' activity — assertions below are therefore all lower bounds.
fn delta_of(f: impl FnOnce()) -> MetricsSnapshot {
    let before = pwdb_metrics::snapshot();
    f();
    pwdb_metrics::snapshot().delta(&before)
}

#[test]
fn blu_primitives_bump_their_counters() {
    let mut rng = Rng::new(0x0B5E_0001);
    let x = testgen::clause_set(&mut rng, 6, 5, 3);
    let y = testgen::clause_set(&mut rng, 6, 4, 3);
    let mask: BTreeSet<AtomId> = [AtomId(0), AtomId(2)].into_iter().collect();

    let alg = BluClausal::new();
    let d = delta_of(|| {
        std::hint::black_box(alg.op_assert(&x, &y));
        std::hint::black_box(alg.op_combine(&x, &y));
        std::hint::black_box(alg.op_complement(&y));
        std::hint::black_box(alg.op_mask(&x, &mask));
        std::hint::black_box(alg.op_genmask(&x));
    });

    for name in [
        "blu.assert.calls",
        "blu.combine.calls",
        "blu.complement.calls",
        "blu.mask.calls",
        "blu.genmask.calls",
    ] {
        assert!(
            d.counter(name) >= 1,
            "{name} did not fire: {:?}",
            d.counters
        );
    }
    // Input-size accounting fired alongside the calls.
    assert!(d.counter("blu.assert.in_length") > 0);
    // Wall time was attributed to each primitive.
    assert!(d.timers.contains_key("blu.assert.wall"));
    assert!(d.timers.contains_key("blu.genmask.wall"));
    // Output sizes landed in the histograms.
    assert!(d.histograms.contains_key("blu.assert.out_length"));
}

#[test]
fn sat_genmask_drives_the_dpll_counters() {
    let mut rng = Rng::new(0x0B5E_0002);
    let alg = BluClausal::new().with_genmask(GenmaskStrategy::SatBased);
    let d = delta_of(|| {
        for _ in 0..4 {
            let phi = testgen::clause_set(&mut rng, 7, 8, 3);
            std::hint::black_box(alg.op_genmask(&phi));
        }
    });
    assert!(d.counter("blu.genmask.calls") >= 4);
    assert!(
        d.counter("logic.dpll.solves") > 0,
        "SAT strategy must reach DPLL"
    );
}

#[test]
fn hlu_database_bumps_statement_and_query_counters() {
    let mut rng = Rng::new(0x0B5E_0003);
    let mut db = ClausalDatabase::new();
    let d = delta_of(|| {
        for _ in 0..6 {
            db.insert(testgen::literal_disjunction(&mut rng, 8));
        }
        for _ in 0..4 {
            let q = testgen::wff(&mut rng, 8, 2);
            std::hint::black_box(db.is_certain(&q));
            std::hint::black_box(db.is_possible(&q));
        }
    });
    assert!(d.counter("hlu.stmt.total") >= 6);
    assert!(d.counter("hlu.stmt.insert") >= 6);
    assert!(d.counter("hlu.query.certain.calls") >= 4);
    assert!(d.counter("hlu.query.possible.calls") >= 4);
    assert!(d.timers.contains_key("hlu.update.wall"));
    assert!(d.timers.contains_key("hlu.query.certain.wall"));
}

#[test]
fn counters_are_monotone_across_snapshots() {
    let mut rng = Rng::new(0x0B5E_0004);
    let alg = BluClausal::new();
    let s1 = pwdb_metrics::snapshot();
    let x = testgen::clause_set(&mut rng, 6, 5, 3);
    let y = testgen::clause_set(&mut rng, 6, 5, 3);
    std::hint::black_box(alg.op_combine(&x, &y));
    let s2 = pwdb_metrics::snapshot();
    for (name, &v1) in &s1.counters {
        assert!(
            s2.counter(name) >= v1,
            "counter {name} went backwards: {v1} -> {}",
            s2.counter(name)
        );
    }
}

#[test]
fn live_snapshot_round_trips_through_json() {
    let mut rng = Rng::new(0x0B5E_0005);
    let alg = BluClausal::new();
    let x = testgen::clause_set(&mut rng, 6, 6, 3);
    std::hint::black_box(alg.op_complement(&x));
    std::hint::black_box(alg.op_genmask(&x));

    let snap = pwdb_metrics::snapshot();
    let text = snap.to_json();
    let back = MetricsSnapshot::from_json(&text).expect("snapshot JSON must re-parse");
    assert_eq!(back, snap);
}
