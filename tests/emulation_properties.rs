//! Property-based verification of the emulation theorems (2.3.4(a),
//! 2.3.6(a), 2.3.9(a)): for randomly generated clause-set states, every
//! BLU-C operator commutes with `e_CI` into BLU-I — for the paper-exact
//! algebra and for the optimized variants.

use std::collections::BTreeSet;

use proptest::prelude::*;

use pwdb::blu::{
    check_states, clause_state_to_worlds, BluClausal, BluInstance, BluSemantics,
    GenmaskStrategy,
};
use pwdb::logic::{AtomId, Clause, ClauseSet, Literal};
use pwdb::worlds::WorldSet;

const N_ATOMS: usize = 5;

fn arb_clause() -> impl Strategy<Value = Clause> {
    // Up to 4 literals over N_ATOMS atoms; tautologies and duplicates are
    // normalized away by the constructors.
    proptest::collection::vec((0..N_ATOMS as u32, any::<bool>()), 0..=4).prop_map(|lits| {
        Clause::new(
            lits.into_iter()
                .map(|(a, pos)| Literal::new(AtomId(a), pos))
                .collect(),
        )
    })
}

fn arb_clause_set(max_clauses: usize) -> impl Strategy<Value = ClauseSet> {
    proptest::collection::vec(arb_clause(), 0..=max_clauses)
        .prop_map(ClauseSet::from_clauses)
}

fn arb_mask() -> impl Strategy<Value = BTreeSet<AtomId>> {
    proptest::collection::btree_set(0..N_ATOMS as u32, 0..=2)
        .prop_map(|s| s.into_iter().map(AtomId).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn paper_exact_algebra_emulates(
        x in arb_clause_set(4),
        y in arb_clause_set(3),
        extra in arb_mask(),
    ) {
        let report = check_states(&BluClausal::new(), N_ATOMS, &x, &y, &extra);
        prop_assert!(report.all_ok(), "failures: {:?}", report.failures);
    }

    #[test]
    fn optimized_algebra_emulates(
        x in arb_clause_set(4),
        y in arb_clause_set(3),
        extra in arb_mask(),
    ) {
        let alg = BluClausal::new()
            .with_reduction(true)
            .with_genmask(GenmaskStrategy::SatBased);
        let report = check_states(&alg, N_ATOMS, &x, &y, &extra);
        prop_assert!(report.all_ok(), "failures: {:?}", report.failures);
    }

    #[test]
    fn genmask_strategies_agree(phi in arb_clause_set(5)) {
        prop_assert_eq!(
            BluClausal::genmask_paper(&phi),
            BluClausal::genmask_sat(&phi)
        );
    }

    #[test]
    fn genmask_equals_semantic_dep(phi in arb_clause_set(5)) {
        let semantic: BTreeSet<AtomId> =
            WorldSet::from_clauses(N_ATOMS, &phi).dep().into_iter().collect();
        prop_assert_eq!(BluClausal::genmask_paper(&phi), semantic);
    }

    #[test]
    fn mask_is_resolution_forgetting(phi in arb_clause_set(5), m in arb_mask()) {
        let alg = BluClausal::new();
        let clausal = clause_state_to_worlds(N_ATOMS, &alg.op_mask(&phi, &m));
        let atoms: Vec<AtomId> = m.iter().copied().collect();
        let semantic = WorldSet::from_clauses(N_ATOMS, &phi).saturate_all(&atoms);
        prop_assert_eq!(clausal, semantic);
    }

    #[test]
    fn complement_is_involutive_semantically(phi in arb_clause_set(4)) {
        let alg = BluClausal::new();
        let twice = alg.op_complement(&alg.op_complement(&phi));
        prop_assert_eq!(
            clause_state_to_worlds(N_ATOMS, &twice),
            clause_state_to_worlds(N_ATOMS, &phi)
        );
    }

    #[test]
    fn boolean_algebra_laws_at_instance_level(
        x in arb_clause_set(3),
        y in arb_clause_set(3),
        z in arb_clause_set(3),
    ) {
        let inst = BluInstance::new(N_ATOMS);
        let ex = clause_state_to_worlds(N_ATOMS, &x);
        let ey = clause_state_to_worlds(N_ATOMS, &y);
        let ez = clause_state_to_worlds(N_ATOMS, &z);
        // Distributivity: x ∩ (y ∪ z) = (x ∩ y) ∪ (x ∩ z).
        prop_assert_eq!(
            inst.op_assert(&ex, &inst.op_combine(&ey, &ez)),
            inst.op_combine(&inst.op_assert(&ex, &ey), &inst.op_assert(&ex, &ez))
        );
        // De Morgan: ¬(x ∪ y) = ¬x ∩ ¬y.
        prop_assert_eq!(
            inst.op_complement(&inst.op_combine(&ex, &ey)),
            inst.op_assert(&inst.op_complement(&ex), &inst.op_complement(&ey))
        );
        // Double complement.
        prop_assert_eq!(inst.op_complement(&inst.op_complement(&ex)), ex);
    }

    #[test]
    fn mask_is_idempotent_and_monotone(phi in arb_clause_set(4), m in arb_mask()) {
        let inst = BluInstance::new(N_ATOMS);
        let ex = clause_state_to_worlds(N_ATOMS, &phi);
        let once = inst.op_mask(&ex, &m);
        // Idempotent.
        prop_assert_eq!(inst.op_mask(&once, &m), once.clone());
        // Extensive: masking only adds worlds.
        prop_assert!(ex.is_subset(&once));
        // The result no longer depends on the masked atoms.
        for a in &m {
            prop_assert!(once.independent_of(*a));
        }
    }

    /// Surjectivity of `e_CI[S]` (Definition 2.3.1 requires the emulation
    /// maps to be surjective): every world set is `Mod` of its
    /// axiomatization.
    #[test]
    fn e_ci_state_map_is_surjective(bits in proptest::collection::btree_set(0u64..32, 0..=12)) {
        let mut target = WorldSet::empty(N_ATOMS);
        for b in bits {
            target.insert(pwdb::worlds::World::from_bits(b, N_ATOMS));
        }
        let phi = pwdb::worlds::axiomatize(&target);
        prop_assert_eq!(clause_state_to_worlds(N_ATOMS, &phi), target);
    }

    #[test]
    fn genmask_of_masked_state_is_disjoint_from_mask(
        phi in arb_clause_set(4),
        m in arb_mask(),
    ) {
        let inst = BluInstance::new(N_ATOMS);
        let masked = inst.op_mask(&clause_state_to_worlds(N_ATOMS, &phi), &m);
        let dep = inst.op_genmask(&masked);
        prop_assert!(dep.is_disjoint(&m));
    }
}
