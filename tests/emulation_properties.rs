//! Property-based verification of the emulation theorems (2.3.4(a),
//! 2.3.6(a), 2.3.9(a)): for randomly generated clause-set states, every
//! BLU-C operator commutes with `e_CI` into BLU-I — for the paper-exact
//! algebra and for the optimized variants.
//!
//! Seeded deterministic loops stand in for the old proptest strategies.

use std::collections::BTreeSet;

use pwdb::blu::{
    check_states, clause_state_to_worlds, BluClausal, BluInstance, BluSemantics, GenmaskStrategy,
};
use pwdb::logic::{AtomId, ClauseSet, Rng};
use pwdb::worlds::WorldSet;
use pwdb_suite::testgen;

const N_ATOMS: usize = 5;
const CASES: usize = 128;

fn arb_clause_set(rng: &mut Rng, max_clauses: usize) -> ClauseSet {
    testgen::clause_set(rng, N_ATOMS, max_clauses, 4)
}

fn arb_mask(rng: &mut Rng) -> BTreeSet<AtomId> {
    testgen::mask(rng, N_ATOMS, 2)
}

#[test]
fn paper_exact_algebra_emulates() {
    let mut rng = Rng::new(0xE301);
    for _ in 0..CASES {
        let x = arb_clause_set(&mut rng, 4);
        let y = arb_clause_set(&mut rng, 3);
        let extra = arb_mask(&mut rng);
        let report = check_states(&BluClausal::new(), N_ATOMS, &x, &y, &extra);
        assert!(report.all_ok(), "failures: {:?}", report.failures);
    }
}

#[test]
fn optimized_algebra_emulates() {
    let mut rng = Rng::new(0xE302);
    for _ in 0..CASES {
        let x = arb_clause_set(&mut rng, 4);
        let y = arb_clause_set(&mut rng, 3);
        let extra = arb_mask(&mut rng);
        let alg = BluClausal::new()
            .with_reduction(true)
            .with_genmask(GenmaskStrategy::SatBased);
        let report = check_states(&alg, N_ATOMS, &x, &y, &extra);
        assert!(report.all_ok(), "failures: {:?}", report.failures);
    }
}

#[test]
fn genmask_strategies_agree() {
    let mut rng = Rng::new(0xE303);
    for _ in 0..CASES {
        let phi = arb_clause_set(&mut rng, 5);
        assert_eq!(
            BluClausal::genmask_paper(&phi),
            BluClausal::genmask_sat(&phi),
            "strategies diverged on {phi}"
        );
    }
}

#[test]
fn genmask_equals_semantic_dep() {
    let mut rng = Rng::new(0xE304);
    for _ in 0..CASES {
        let phi = arb_clause_set(&mut rng, 5);
        let semantic: BTreeSet<AtomId> = WorldSet::from_clauses(N_ATOMS, &phi)
            .dep()
            .into_iter()
            .collect();
        assert_eq!(BluClausal::genmask_paper(&phi), semantic);
    }
}

#[test]
fn mask_is_resolution_forgetting() {
    let mut rng = Rng::new(0xE305);
    for _ in 0..CASES {
        let phi = arb_clause_set(&mut rng, 5);
        let m = arb_mask(&mut rng);
        let alg = BluClausal::new();
        let clausal = clause_state_to_worlds(N_ATOMS, &alg.op_mask(&phi, &m));
        let atoms: Vec<AtomId> = m.iter().copied().collect();
        let semantic = WorldSet::from_clauses(N_ATOMS, &phi).saturate_all(&atoms);
        assert_eq!(clausal, semantic);
    }
}

#[test]
fn complement_is_involutive_semantically() {
    let mut rng = Rng::new(0xE306);
    for _ in 0..CASES {
        let phi = arb_clause_set(&mut rng, 4);
        let alg = BluClausal::new();
        let twice = alg.op_complement(&alg.op_complement(&phi));
        assert_eq!(
            clause_state_to_worlds(N_ATOMS, &twice),
            clause_state_to_worlds(N_ATOMS, &phi)
        );
    }
}

#[test]
fn boolean_algebra_laws_at_instance_level() {
    let mut rng = Rng::new(0xE307);
    for _ in 0..CASES {
        let x = arb_clause_set(&mut rng, 3);
        let y = arb_clause_set(&mut rng, 3);
        let z = arb_clause_set(&mut rng, 3);
        let inst = BluInstance::new(N_ATOMS);
        let ex = clause_state_to_worlds(N_ATOMS, &x);
        let ey = clause_state_to_worlds(N_ATOMS, &y);
        let ez = clause_state_to_worlds(N_ATOMS, &z);
        // Distributivity: x ∩ (y ∪ z) = (x ∩ y) ∪ (x ∩ z).
        assert_eq!(
            inst.op_assert(&ex, &inst.op_combine(&ey, &ez)),
            inst.op_combine(&inst.op_assert(&ex, &ey), &inst.op_assert(&ex, &ez))
        );
        // De Morgan: ¬(x ∪ y) = ¬x ∩ ¬y.
        assert_eq!(
            inst.op_complement(&inst.op_combine(&ex, &ey)),
            inst.op_assert(&inst.op_complement(&ex), &inst.op_complement(&ey))
        );
        // Double complement.
        assert_eq!(inst.op_complement(&inst.op_complement(&ex)), ex);
    }
}

#[test]
fn mask_is_idempotent_and_monotone() {
    let mut rng = Rng::new(0xE308);
    for _ in 0..CASES {
        let phi = arb_clause_set(&mut rng, 4);
        let m = arb_mask(&mut rng);
        let inst = BluInstance::new(N_ATOMS);
        let ex = clause_state_to_worlds(N_ATOMS, &phi);
        let once = inst.op_mask(&ex, &m);
        // Idempotent.
        assert_eq!(inst.op_mask(&once, &m), once.clone());
        // Extensive: masking only adds worlds.
        assert!(ex.is_subset(&once));
        // The result no longer depends on the masked atoms.
        for a in &m {
            assert!(once.independent_of(*a));
        }
    }
}

/// Surjectivity of `e_CI[S]` (Definition 2.3.1 requires the emulation
/// maps to be surjective): every world set is `Mod` of its
/// axiomatization.
#[test]
fn e_ci_state_map_is_surjective() {
    let mut rng = Rng::new(0xE309);
    for _ in 0..CASES {
        let bits = testgen::world_bits(&mut rng, N_ATOMS, 12);
        let mut target = WorldSet::empty(N_ATOMS);
        for b in bits {
            target.insert(pwdb::worlds::World::from_bits(b, N_ATOMS));
        }
        let phi = pwdb::worlds::axiomatize(&target);
        assert_eq!(clause_state_to_worlds(N_ATOMS, &phi), target);
    }
}

#[test]
fn genmask_of_masked_state_is_disjoint_from_mask() {
    let mut rng = Rng::new(0xE30A);
    for _ in 0..CASES {
        let phi = arb_clause_set(&mut rng, 4);
        let m = arb_mask(&mut rng);
        let inst = BluInstance::new(N_ATOMS);
        let masked = inst.op_mask(&clause_state_to_worlds(N_ATOMS, &phi), &m);
        let dep = inst.op_genmask(&masked);
        assert!(dep.is_disjoint(&m));
    }
}
