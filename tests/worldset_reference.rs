//! Property tests of the bitset [`WorldSet`] against a straightforward
//! reference implementation (`BTreeSet<u64>`): every operation the BLU
//! instance semantics relies on must agree with naive set semantics,
//! including the word-level flip tricks across block boundaries.
//!
//! Seeded deterministic loops stand in for the old proptest strategies;
//! every run explores the same cases.

use std::collections::BTreeSet;

use pwdb::logic::{AtomId, Rng};
use pwdb::worlds::{World, WorldSet};
use pwdb_suite::testgen;

const N: usize = 8; // crosses the 64-bit block boundary (2^8 = 4 blocks)
const CASES: usize = 256;

fn from_bits(bits: &BTreeSet<u64>) -> WorldSet {
    let mut s = WorldSet::empty(N);
    for &b in bits {
        s.insert(World::from_bits(b, N));
    }
    s
}

fn to_bits(s: &WorldSet) -> BTreeSet<u64> {
    s.iter().map(|w| w.bits()).collect()
}

fn ref_flip(bits: &BTreeSet<u64>, atom: u32) -> BTreeSet<u64> {
    bits.iter().map(|b| b ^ (1 << atom)).collect()
}

fn arb_bits(rng: &mut Rng) -> BTreeSet<u64> {
    testgen::world_bits(rng, N, 32)
}

#[test]
fn roundtrip() {
    let mut rng = Rng::new(0x5E71);
    for _ in 0..CASES {
        let bits = arb_bits(&mut rng);
        assert_eq!(to_bits(&from_bits(&bits)), bits);
    }
}

#[test]
fn boolean_ops_match_reference() {
    let mut rng = Rng::new(0x5E72);
    for _ in 0..CASES {
        let a = arb_bits(&mut rng);
        let b = arb_bits(&mut rng);
        let wa = from_bits(&a);
        let wb = from_bits(&b);
        assert_eq!(
            to_bits(&wa.union(&wb)),
            a.union(&b).copied().collect::<BTreeSet<u64>>()
        );
        assert_eq!(
            to_bits(&wa.intersect(&wb)),
            a.intersection(&b).copied().collect::<BTreeSet<u64>>()
        );
        assert_eq!(
            to_bits(&wa.difference(&wb)),
            a.difference(&b).copied().collect::<BTreeSet<u64>>()
        );
        assert_eq!(wa.is_subset(&wb), a.is_subset(&b));
    }
}

#[test]
fn complement_matches_reference() {
    let mut rng = Rng::new(0x5E73);
    let full: BTreeSet<u64> = (0..(1u64 << N)).collect();
    for _ in 0..CASES {
        let a = arb_bits(&mut rng);
        let wa = from_bits(&a);
        assert_eq!(
            to_bits(&wa.complement()),
            full.difference(&a).copied().collect::<BTreeSet<u64>>()
        );
    }
}

#[test]
fn flip_matches_reference_all_axes() {
    let mut rng = Rng::new(0x5E74);
    for _ in 0..CASES {
        let a = arb_bits(&mut rng);
        let atom = rng.below(N as u64) as u32;
        let wa = from_bits(&a);
        assert_eq!(to_bits(&wa.flip(AtomId(atom))), ref_flip(&a, atom));
    }
}

#[test]
fn saturate_matches_reference() {
    let mut rng = Rng::new(0x5E75);
    for _ in 0..CASES {
        let a = arb_bits(&mut rng);
        let atom = rng.below(N as u64) as u32;
        let wa = from_bits(&a);
        let expected: BTreeSet<u64> = a.union(&ref_flip(&a, atom)).copied().collect();
        assert_eq!(to_bits(&wa.saturate(AtomId(atom))), expected);
    }
}

#[test]
fn dep_matches_reference() {
    let mut rng = Rng::new(0x5E76);
    for _ in 0..CASES {
        let a = arb_bits(&mut rng);
        let wa = from_bits(&a);
        let dep: Vec<u32> = wa.dep().into_iter().map(|x| x.0).collect();
        let expected: Vec<u32> = (0..N as u32)
            .filter(|&atom| ref_flip(&a, atom) != a)
            .collect();
        assert_eq!(dep, expected);
    }
}

#[test]
fn len_and_emptiness() {
    let mut rng = Rng::new(0x5E77);
    for _ in 0..CASES {
        let a = arb_bits(&mut rng);
        let wa = from_bits(&a);
        assert_eq!(wa.len(), a.len());
        assert_eq!(wa.is_empty(), a.is_empty());
    }
}

#[test]
fn insert_remove_contains() {
    let mut rng = Rng::new(0x5E78);
    for _ in 0..CASES {
        let a = arb_bits(&mut rng);
        let w = rng.below(1 << N);
        let mut wa = from_bits(&a);
        let world = World::from_bits(w, N);
        assert_eq!(wa.contains(world), a.contains(&w));
        let was_new = wa.insert(world);
        assert_eq!(was_new, !a.contains(&w));
        assert!(wa.contains(world));
        let removed = wa.remove(world);
        assert!(removed);
        assert!(!wa.contains(world));
    }
}
