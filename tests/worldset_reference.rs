//! Property tests of the bitset [`WorldSet`] against a straightforward
//! reference implementation (`BTreeSet<u64>`): every operation the BLU
//! instance semantics relies on must agree with naive set semantics,
//! including the word-level flip tricks across block boundaries.

use std::collections::BTreeSet;

use proptest::prelude::*;

use pwdb::logic::AtomId;
use pwdb::worlds::{World, WorldSet};

const N: usize = 8; // crosses the 64-bit block boundary (2^8 = 4 blocks)

fn from_bits(bits: &BTreeSet<u64>) -> WorldSet {
    let mut s = WorldSet::empty(N);
    for &b in bits {
        s.insert(World::from_bits(b, N));
    }
    s
}

fn to_bits(s: &WorldSet) -> BTreeSet<u64> {
    s.iter().map(|w| w.bits()).collect()
}

fn ref_flip(bits: &BTreeSet<u64>, atom: u32) -> BTreeSet<u64> {
    bits.iter().map(|b| b ^ (1 << atom)).collect()
}

fn arb_bits() -> impl Strategy<Value = BTreeSet<u64>> {
    proptest::collection::btree_set(0u64..(1 << N), 0..=32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip(bits in arb_bits()) {
        prop_assert_eq!(to_bits(&from_bits(&bits)), bits);
    }

    #[test]
    fn boolean_ops_match_reference(a in arb_bits(), b in arb_bits()) {
        let wa = from_bits(&a);
        let wb = from_bits(&b);
        prop_assert_eq!(
            to_bits(&wa.union(&wb)),
            a.union(&b).copied().collect::<BTreeSet<u64>>()
        );
        prop_assert_eq!(
            to_bits(&wa.intersect(&wb)),
            a.intersection(&b).copied().collect::<BTreeSet<u64>>()
        );
        prop_assert_eq!(
            to_bits(&wa.difference(&wb)),
            a.difference(&b).copied().collect::<BTreeSet<u64>>()
        );
        prop_assert_eq!(wa.is_subset(&wb), a.is_subset(&b));
    }

    #[test]
    fn complement_matches_reference(a in arb_bits()) {
        let wa = from_bits(&a);
        let full: BTreeSet<u64> = (0..(1u64 << N)).collect();
        prop_assert_eq!(
            to_bits(&wa.complement()),
            full.difference(&a).copied().collect::<BTreeSet<u64>>()
        );
    }

    #[test]
    fn flip_matches_reference_all_axes(a in arb_bits(), atom in 0..N as u32) {
        let wa = from_bits(&a);
        prop_assert_eq!(to_bits(&wa.flip(AtomId(atom))), ref_flip(&a, atom));
    }

    #[test]
    fn saturate_matches_reference(a in arb_bits(), atom in 0..N as u32) {
        let wa = from_bits(&a);
        let expected: BTreeSet<u64> =
            a.union(&ref_flip(&a, atom)).copied().collect();
        prop_assert_eq!(to_bits(&wa.saturate(AtomId(atom))), expected);
    }

    #[test]
    fn dep_matches_reference(a in arb_bits()) {
        let wa = from_bits(&a);
        let dep: Vec<u32> = wa.dep().into_iter().map(|x| x.0).collect();
        let expected: Vec<u32> = (0..N as u32)
            .filter(|&atom| ref_flip(&a, atom) != a)
            .collect();
        prop_assert_eq!(dep, expected);
    }

    #[test]
    fn len_and_emptiness(a in arb_bits()) {
        let wa = from_bits(&a);
        prop_assert_eq!(wa.len(), a.len());
        prop_assert_eq!(wa.is_empty(), a.is_empty());
    }

    #[test]
    fn insert_remove_contains(a in arb_bits(), w in 0u64..(1 << N)) {
        let mut wa = from_bits(&a);
        let world = World::from_bits(w, N);
        prop_assert_eq!(wa.contains(world), a.contains(&w));
        let was_new = wa.insert(world);
        prop_assert_eq!(was_new, !a.contains(&w));
        prop_assert!(wa.contains(world));
        let removed = wa.remove(world);
        prop_assert!(removed);
        prop_assert!(!wa.contains(world));
    }
}
