//! Property-based soundness of the BLU term optimizer: for random terms
//! and random valuations of their variables, the optimized term denotes
//! the same world set under BLU-I — and hence (emulation) the same
//! meaning under BLU-C.
//!
//! Seeded deterministic loops stand in for the old proptest strategies.

use pwdb::blu::{eval_sterm, BluInstance, Env, Optimizer, STerm};
use pwdb::logic::Rng;
use pwdb::worlds::{Mask, WorldSet};
use pwdb_suite::testgen;

const N: usize = 4;
const CASES: usize = 192;
const STATE_VARS: [&str; 3] = ["s0", "s1", "s2"];
const MASK_VARS: [&str; 2] = ["m0", "m1"];

fn arb_sterm(rng: &mut Rng) -> STerm {
    testgen::sterm(rng, 4, &MASK_VARS)
}

fn arb_state(rng: &mut Rng) -> WorldSet {
    testgen::world_set(rng, N, 6)
}

fn arb_mask_value(rng: &mut Rng) -> Mask {
    testgen::mask(rng, N, 2)
}

#[test]
fn optimizer_preserves_instance_semantics() {
    let mut rng = Rng::new(0x0971);
    for _ in 0..CASES {
        let term = arb_sterm(&mut rng);
        let alg = BluInstance::new(N);
        let mut env: Env<BluInstance> = Env::new();
        for name in STATE_VARS {
            env.bind_state(name, arb_state(&mut rng));
        }
        for name in MASK_VARS {
            env.bind_mask(name, arb_mask_value(&mut rng));
        }

        let before = eval_sterm(&alg, &term, &env).unwrap();
        let (optimized, stats) = Optimizer::new().optimize_term(&term);
        let after = eval_sterm(&alg, &optimized, &env).unwrap();
        assert_eq!(
            before, after,
            "term {term} optimized to {optimized} ({} rewrites)",
            stats.rewrites
        );
        // The optimizer never grows a term.
        assert!(stats.size_after <= stats.size_before);
    }
}

/// Under integrity constraints the involution rule is UNSOUND — `mask`
/// can carry legal states outside `ILDB` (see the regression test below)
/// — so the optimizer must be run with `assuming_full_universe(false)`,
/// under which it stays sound.
#[test]
fn optimizer_sound_under_constraints_with_flag() {
    let mut rng = Rng::new(0x0972);
    // Universe: worlds where A1 → A2.
    let mut schema = pwdb::worlds::Schema::with_atoms(N);
    schema.add_constraints("{!A1 | A2}").unwrap();
    let alg = BluInstance::for_schema(&schema);
    let legal = schema.legal_worlds();

    for _ in 0..CASES {
        let term = arb_sterm(&mut rng);
        let mut env: Env<BluInstance> = Env::new();
        for name in STATE_VARS {
            // Clamp bound states into the legal universe.
            env.bind_state(name, arb_state(&mut rng).intersect(&legal));
        }
        for name in MASK_VARS {
            env.bind_mask(name, arb_mask_value(&mut rng));
        }

        let before = eval_sterm(&alg, &term, &env).unwrap();
        let (optimized, _) = Optimizer::new()
            .assuming_full_universe(false)
            .optimize_term(&term);
        let after = eval_sterm(&alg, &optimized, &env).unwrap();
        assert_eq!(before, after, "term {term} vs {optimized}");
    }
}

/// The counterexample the property test originally surfaced, pinned: over
/// a constrained schema, `(complement (complement (mask s0 (genmask s0))))`
/// differs from `(mask s0 (genmask s0))` because the mask escapes the
/// legal universe and the double complement clamps back into it.
#[test]
fn involution_unsound_under_constraints() {
    let mut schema = pwdb::worlds::Schema::with_atoms(N);
    schema.add_constraints("{!A1 | A2}").unwrap();
    let alg = BluInstance::for_schema(&schema);
    // s0 = the legal worlds where A1 holds (hence A2 holds).
    let mut atoms = pwdb::logic::AtomTable::with_indexed_atoms(N);
    let a1 = pwdb::logic::parse_wff("A1", &mut atoms).unwrap();
    let s0 = WorldSet::from_wff(N, &a1).intersect(&schema.legal_worlds());

    let term = pwdb::blu::parse_sterm("(complement (complement (mask s0 (genmask s0))))").unwrap();
    let inner = pwdb::blu::parse_sterm("(mask s0 (genmask s0))").unwrap();
    let mut env: Env<BluInstance> = Env::new();
    env.bind_state("s0", s0);
    let with_involution = eval_sterm(&alg, &inner, &env).unwrap();
    let clamped = eval_sterm(&alg, &term, &env).unwrap();
    assert_ne!(with_involution, clamped, "the mask escapes ILDB");
    // The clamp is exactly intersection with the legal universe.
    assert_eq!(clamped, with_involution.intersect(&schema.legal_worlds()));
}
