//! Property-based soundness of the BLU term optimizer: for random terms
//! and random valuations of their variables, the optimized term denotes
//! the same world set under BLU-I — and hence (emulation) the same
//! meaning under BLU-C.

use proptest::prelude::*;

use pwdb::blu::{eval_sterm, BluInstance, Env, MTerm, Optimizer, STerm};
use pwdb::logic::AtomId;
use pwdb::worlds::{Mask, WorldSet};

const N: usize = 4;
const STATE_VARS: [&str; 3] = ["s0", "s1", "s2"];
const MASK_VARS: [&str; 2] = ["m0", "m1"];

fn arb_sterm() -> impl Strategy<Value = STerm> {
    let leaf = prop_oneof![
        Just(STerm::var("s0")),
        Just(STerm::var("s1")),
        Just(STerm::var("s2")),
    ];
    leaf.prop_recursive(4, 64, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.assert(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.combine(b)),
            inner.clone().prop_map(STerm::complement),
            (inner.clone(), prop_oneof![
                Just(MTerm::var("m0")),
                Just(MTerm::var("m1")),
            ])
                .prop_map(|(a, m)| a.mask(m)),
            (inner.clone(), inner).prop_map(|(a, g)| a.mask(g.genmask())),
        ]
    })
}

fn arb_state() -> impl Strategy<Value = WorldSet> {
    proptest::collection::btree_set(0u64..(1 << N), 0..=6).prop_map(|bits| {
        let mut s = WorldSet::empty(N);
        for b in bits {
            s.insert(pwdb::worlds::World::from_bits(b, N));
        }
        s
    })
}

fn arb_mask_value() -> impl Strategy<Value = Mask> {
    proptest::collection::btree_set(0..N as u32, 0..=2)
        .prop_map(|s| s.into_iter().map(AtomId).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn optimizer_preserves_instance_semantics(
        term in arb_sterm(),
        states in proptest::array::uniform3(arb_state()),
        masks in proptest::array::uniform2(arb_mask_value()),
    ) {
        let alg = BluInstance::new(N);
        let mut env: Env<BluInstance> = Env::new();
        for (name, value) in STATE_VARS.iter().zip(states.iter()) {
            env.bind_state(name, value.clone());
        }
        for (name, value) in MASK_VARS.iter().zip(masks.iter()) {
            env.bind_mask(name, value.clone());
        }

        let before = eval_sterm(&alg, &term, &env).unwrap();
        let (optimized, stats) = Optimizer::new().optimize_term(&term);
        let after = eval_sterm(&alg, &optimized, &env).unwrap();
        prop_assert_eq!(
            before,
            after,
            "term {} optimized to {} ({} rewrites)",
            term,
            optimized,
            stats.rewrites
        );
        // The optimizer never grows a term.
        prop_assert!(stats.size_after <= stats.size_before);
    }

    /// Under integrity constraints the involution rule is UNSOUND —
    /// `mask` can carry legal states outside `ILDB` (see the regression
    /// test below) — so the optimizer must be run with
    /// `assuming_full_universe(false)`, under which it stays sound.
    #[test]
    fn optimizer_sound_under_constraints_with_flag(
        term in arb_sterm(),
        states in proptest::array::uniform3(arb_state()),
        masks in proptest::array::uniform2(arb_mask_value()),
    ) {
        // Universe: worlds where A1 → A2.
        let mut schema = pwdb::worlds::Schema::with_atoms(N);
        schema.add_constraints("{!A1 | A2}").unwrap();
        let alg = BluInstance::for_schema(&schema);
        let legal = schema.legal_worlds();

        let mut env: Env<BluInstance> = Env::new();
        for (name, value) in STATE_VARS.iter().zip(states.iter()) {
            // Clamp bound states into the legal universe.
            env.bind_state(name, value.intersect(&legal));
        }
        for (name, value) in MASK_VARS.iter().zip(masks.iter()) {
            env.bind_mask(name, value.clone());
        }

        let before = eval_sterm(&alg, &term, &env).unwrap();
        let (optimized, _) = Optimizer::new()
            .assuming_full_universe(false)
            .optimize_term(&term);
        let after = eval_sterm(&alg, &optimized, &env).unwrap();
        prop_assert_eq!(before, after, "term {} vs {}", term, optimized);
    }
}

/// The counterexample the property test originally surfaced, pinned: over
/// a constrained schema, `(complement (complement (mask s0 (genmask s0))))`
/// differs from `(mask s0 (genmask s0))` because the mask escapes the
/// legal universe and the double complement clamps back into it.
#[test]
fn involution_unsound_under_constraints() {
    let mut schema = pwdb::worlds::Schema::with_atoms(N);
    schema.add_constraints("{!A1 | A2}").unwrap();
    let alg = BluInstance::for_schema(&schema);
    // s0 = the legal worlds where A1 holds (hence A2 holds).
    let mut atoms = pwdb::logic::AtomTable::with_indexed_atoms(N);
    let a1 = pwdb::logic::parse_wff("A1", &mut atoms).unwrap();
    let s0 = WorldSet::from_wff(N, &a1).intersect(&schema.legal_worlds());

    let term = pwdb::blu::parse_sterm(
        "(complement (complement (mask s0 (genmask s0))))",
    )
    .unwrap();
    let inner = pwdb::blu::parse_sterm("(mask s0 (genmask s0))").unwrap();
    let mut env: Env<BluInstance> = Env::new();
    env.bind_state("s0", s0);
    let with_involution = eval_sterm(&alg, &inner, &env).unwrap();
    let clamped = eval_sterm(&alg, &term, &env).unwrap();
    assert_ne!(with_involution, clamped, "the mask escapes ILDB");
    // The clamp is exactly intersection with the legal universe.
    assert_eq!(clamped, with_involution.intersect(&schema.legal_worlds()));
}
