//! Metamorphic tests for the memoization layer and the subsumption-insert
//! contract.
//!
//! The memo caches (`blu.cache.genmask`, `worlds.cache.inset`,
//! `logic.cache.prime_implicates`) are keyed on their *full* interned
//! inputs, so a stale answer is only possible if keying or invalidation
//! is wrong. These tests interleave state-mutating primitives
//! (`assert`, `combine`) with repeated `genmask`/`Inset` calls and demand
//! that every cached answer equals a fresh computation — both a
//! cache-cleared indexed run and the cache-bypassing naive engine.
//!
//! The file also pins the `insert_with_subsumption` /
//! `merge_with_subsumption` return-count contract on duplicate and
//! mutually-subsuming inputs (the latent asymmetry where a clause equal
//! to an existing member was reported "added"), for both engines.

use pwdb::blu::{BluClausal, BluSemantics, GenmaskStrategy};
use pwdb::logic::subsumption::{insert_with_subsumption, merge_with_subsumption};
use pwdb::logic::{cache, with_engine, AtomId, Clause, ClauseSet, EngineMode, Literal, Rng};
use pwdb::worlds::inset;
use pwdb_suite::testgen;

const N_ATOMS: usize = 5;

fn lit(a: u32, pos: bool) -> Literal {
    Literal::new(AtomId(a), pos)
}

fn clause(lits: &[(u32, bool)]) -> Clause {
    Clause::new(lits.iter().map(|&(a, p)| lit(a, p)).collect())
}

fn set(clauses: &[&[(u32, bool)]]) -> ClauseSet {
    clauses.iter().map(|c| clause(c)).collect()
}

/// Interleaves state-mutating primitives with repeated `genmask` calls:
/// every repeat must equal the first (memoized) answer, a cache-cleared
/// recomputation, and the naive engine's answer on the same state.
#[test]
fn genmask_cache_survives_interleaved_mutations() {
    let mut rng = Rng::new(0xCAC1);
    let alg = BluClausal::new().with_genmask(GenmaskStrategy::PaperExhaustive);
    let mut state = testgen::clause_set(&mut rng, N_ATOMS, 4, 3);
    for step in 0..24 {
        let operand = testgen::clause_set(&mut rng, N_ATOMS, 3, 3);
        // Mutating primitive: alternates assert/combine, each of which
        // reports a state change to the cache registry.
        state = with_engine(EngineMode::Indexed, || {
            if step % 2 == 0 {
                alg.op_assert(&state, &operand)
            } else {
                alg.op_combine(&state, &operand)
            }
        });
        let first = with_engine(EngineMode::Indexed, || alg.op_genmask(&state));
        let repeated = with_engine(EngineMode::Indexed, || alg.op_genmask(&state));
        assert_eq!(first, repeated, "step {step}: memoized repeat diverged");
        let cold = with_engine(EngineMode::Indexed, || {
            cache::clear_all();
            alg.op_genmask(&state)
        });
        assert_eq!(
            first, cold,
            "step {step}: cached answer != cache-cleared answer"
        );
        let naive = with_engine(EngineMode::Naive, || alg.op_genmask(&state));
        assert_eq!(first, naive, "step {step}: cached answer != naive engine");
    }
}

/// Same metamorphic shape for `Inset[Φ]`: repeated calls, cache-cleared
/// calls, and naive-engine calls must all agree, across a stream of
/// distinct formulas that churns the bounded cache.
#[test]
fn inset_cache_answers_stay_fresh() {
    let mut rng = Rng::new(0xCAC2);
    for case in 0..48 {
        let w = testgen::wff(&mut rng, N_ATOMS, 2);
        let first = with_engine(EngineMode::Indexed, || inset(&w, N_ATOMS));
        let repeated = with_engine(EngineMode::Indexed, || inset(&w, N_ATOMS));
        assert_eq!(first, repeated, "case {case}: memoized repeat diverged");
        let cold = with_engine(EngineMode::Indexed, || {
            cache::clear_all();
            inset(&w, N_ATOMS)
        });
        assert_eq!(first, cold, "case {case}: cached != cache-cleared");
        let naive = with_engine(EngineMode::Naive, || inset(&w, N_ATOMS));
        assert_eq!(first, naive, "case {case}: cached != naive engine");
    }
}

/// The genmask memo actually memoizes: a repeated call on the same state
/// registers as a hit, and mutating primitives bump the state-change
/// counter the registry uses to bound the caches.
#[test]
fn cache_stats_reflect_hits_and_state_changes() {
    with_engine(EngineMode::Indexed, || {
        cache::clear_all();
        let alg = BluClausal::new();
        let mut rng = Rng::new(0xCAC3);
        let x = testgen::clause_set(&mut rng, N_ATOMS, 4, 3);
        let y = testgen::clause_set(&mut rng, N_ATOMS, 3, 3);
        let _ = alg.op_assert(&x, &y); // state mutation, reported
        let _ = alg.op_genmask(&x); // miss
        let _ = alg.op_genmask(&x); // hit
        let stats = cache::all_stats();
        let genmask = stats
            .iter()
            .find(|s| s.name == "blu.cache.genmask")
            .expect("genmask cache registered");
        assert!(genmask.entries >= 1, "memo holds the computed entry");
        assert!(genmask.hits >= 1, "repeat call must hit the memo");
    });
}

/// `reduce_subsumed` is idempotent under both engines: a second sweep
/// over an already-reduced set drops nothing and changes nothing, even
/// when the first sweep ran through indexed insertion.
#[test]
fn reduce_subsumed_is_idempotent() {
    let mut rng = Rng::new(0xCAC4);
    for case in 0..48 {
        let original = testgen::clause_set(&mut rng, N_ATOMS, 8, 4);
        for mode in [EngineMode::Naive, EngineMode::Indexed] {
            with_engine(mode, || {
                let mut s = original.clone();
                s.reduce_subsumed();
                let reduced = s.clone();
                let dropped_again = s.reduce_subsumed();
                assert_eq!(
                    dropped_again, 0,
                    "case {case} {mode:?}: second sweep dropped"
                );
                assert_eq!(
                    s, reduced,
                    "case {case} {mode:?}: second sweep changed the set"
                );
            });
        }
    }
}

/// Pins the insert contract on duplicates: a clause equal to an existing
/// member is *not* added (the pre-fix scan reported it "added" because a
/// clause subsumes itself, short-circuiting the forward check without
/// membership ever being consulted).
#[test]
fn insert_duplicate_reports_not_added() {
    let base = set(&[&[(0, true), (1, true)], &[(2, false)]]);
    for mode in [EngineMode::Naive, EngineMode::Indexed] {
        with_engine(mode, || {
            let mut s = base.clone();
            let added = insert_with_subsumption(&mut s, clause(&[(0, true), (1, true)]));
            assert!(!added, "{mode:?}: duplicate insert must report not-added");
            assert_eq!(
                s, base,
                "{mode:?}: duplicate insert must not change the set"
            );
        });
    }
}

/// Pins the insert contract on proper subsumption in both directions.
#[test]
fn insert_subsumption_counts_are_pinned() {
    let base = set(&[&[(0, true), (1, true)], &[(2, false)]]);
    for mode in [EngineMode::Naive, EngineMode::Indexed] {
        with_engine(mode, || {
            // A strictly weaker clause is absorbed: not added, set intact.
            let mut s = base.clone();
            let added = insert_with_subsumption(&mut s, clause(&[(0, true), (1, true), (3, true)]));
            assert!(!added, "{mode:?}: subsumed insert must report not-added");
            assert_eq!(s, base);

            // A strictly stronger clause replaces its victims.
            let mut s = base.clone();
            let added = insert_with_subsumption(&mut s, clause(&[(0, true)]));
            assert!(added, "{mode:?}: subsuming insert must report added");
            assert_eq!(s, set(&[&[(0, true)], &[(2, false)]]));
        });
    }
}

/// Pins the merge counts on duplicate and mutually-subsuming inputs.
#[test]
fn merge_counts_are_pinned() {
    let base = set(&[&[(0, true), (1, true)], &[(2, false)]]);
    for mode in [EngineMode::Naive, EngineMode::Indexed] {
        with_engine(mode, || {
            // Merging a set into itself adds nothing.
            let mut s = base.clone();
            let added = merge_with_subsumption(&mut s, &base.clone());
            assert_eq!(added, 0, "{mode:?}: self-merge must add 0");
            assert_eq!(s, base);

            // Mutually-subsuming inputs: one incoming clause strengthens
            // a member, the other is absorbed by one.
            let mut s = base.clone();
            let other = set(&[&[(0, true)], &[(2, false), (3, false)]]);
            let added = merge_with_subsumption(&mut s, &other);
            assert_eq!(
                added, 1,
                "{mode:?}: exactly the strengthening clause is added"
            );
            assert_eq!(s, set(&[&[(0, true)], &[(2, false)]]));
        });
    }
}
