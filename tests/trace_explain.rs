//! End-to-end tracing: `EXPLAIN`ing an HLU statement must produce a span
//! tree whose shape matches the paper's translation semantics (§3.2,
//! Definitions 3.2.3/3.2.4), and the same statements must compile and run
//! with the tracer compiled out (`--no-default-features`).
//!
//! Unlike `metrics_observability.rs`, these tests need no delta
//! gymnastics: the span ring is thread-local, so parallel tests cannot
//! see each other's spans.

use pwdb::prelude::*;

fn explained(src: &str, setup: &[&str]) -> Explanation {
    let mut atoms = AtomTable::new();
    let mut db = ClausalDatabase::new();
    for s in setup {
        let p = parse_hlu(s, &mut atoms).expect("setup parses");
        db.run(&p);
    }
    let stmt = parse_hlu_statement(src, &mut atoms).expect("statement parses");
    let HluStatement::Explain(prog) = stmt else {
        panic!("expected an EXPLAIN statement");
    };
    db.explain(&prog)
}

#[cfg(feature = "trace")]
mod with_tracer {
    use super::*;

    /// The `blu.clausal.*` leaf spans in pre-order — the primitive
    /// execution sequence, in the order the BLU program ran them.
    fn clausal_ops(e: &Explanation) -> Vec<&'static str> {
        e.trace
            .names_pre_order()
            .into_iter()
            .filter(|n| n.starts_with("blu.clausal.") && *n != "blu.clausal.mask.step")
            .collect()
    }

    #[test]
    fn explained_insert_follows_the_mask_assert_paradigm() {
        let e = explained("EXPLAIN (insert {a | b})", &["(insert {c})"]);
        assert!(!e.trace.is_empty());

        // The statement span is the root; the translation (compile) and
        // the BLU evaluation both run beneath it.
        let names = e.trace.names_pre_order();
        assert_eq!(names[0], "hlu.stmt.insert");
        assert!(names.contains(&"hlu.compile"));
        assert!(names.contains(&"hlu.compile.insert"));
        assert!(names.contains(&"blu.eval.assert"));

        // Definition 3.2.3: insert = mask–assert — first derive the mask
        // (genmask), apply it (mask), then assert the new information.
        assert_eq!(
            clausal_ops(&e),
            vec![
                "blu.clausal.genmask",
                "blu.clausal.mask",
                "blu.clausal.assert"
            ],
        );
    }

    #[test]
    fn explained_modify_splits_with_combine() {
        let e = explained("EXPLAIN (modify {a} {b})", &["(insert {a})"]);
        let names = e.trace.names_pre_order();
        assert_eq!(names[0], "hlu.stmt.modify");
        assert!(names.contains(&"hlu.compile.modify"));

        // Definition 3.2.4: modify is a where-style split whose branches
        // recombine — `combine` must appear, and both branches mask.
        let ops = clausal_ops(&e);
        let count = |op: &str| ops.iter().filter(|n| **n == op).count();
        assert!(count("blu.clausal.combine") >= 1, "ops: {ops:?}");
        assert!(count("blu.clausal.genmask") >= 1, "ops: {ops:?}");
        assert!(count("blu.clausal.mask") >= 1, "ops: {ops:?}");
    }

    #[test]
    fn spans_carry_cost_attributes() {
        let e = explained("EXPLAIN (insert {a | b})", &["(insert {c})"]);
        // Every clausal primitive span records the theorem's dominant
        // cost term (Theorems 2.3.4(b)/2.3.6(b)/2.3.9(b)) as `cost`.
        let costed: Vec<_> = e
            .trace
            .spans
            .iter()
            .filter(|s| s.name.starts_with("blu.clausal.") && s.name != "blu.clausal.mask.step")
            .collect();
        assert!(!costed.is_empty());
        for s in &costed {
            assert!(s.attr_u64("cost").is_some(), "span {} has no cost", s.name);
        }
    }

    #[test]
    fn explain_leaves_ambient_tracing_untouched() {
        pwdb_trace::set_enabled(false);
        let _ = pwdb_trace::take();
        let e = explained("EXPLAIN (insert {a})", &[]);
        assert!(!e.trace.is_empty(), "EXPLAIN must trace even when off");
        // …but the ambient (disabled) ring must stay empty.
        assert!(pwdb_trace::take().is_empty());
        assert!(!pwdb_trace::is_enabled());
    }

    #[test]
    fn rendered_explanation_shows_statement_and_tree() {
        let e = explained("EXPLAIN (insert {a | b})", &[]);
        let text = e.render();
        assert!(text.contains("statement: (insert {A1 | A2})"), "{text}");
        assert!(text.contains("compiled:"), "{text}");
        assert!(text.contains("hlu.stmt.insert"), "{text}");
        assert!(text.contains("blu.clausal.assert"), "{text}");
    }
}

/// With `--no-default-features` the tracer is compiled out: the same
/// EXPLAIN statement must still parse, run, and render — just without
/// spans.
#[cfg(not(feature = "trace"))]
mod without_tracer {
    use super::*;

    #[test]
    fn explain_still_runs_with_tracer_compiled_out() {
        let e = explained("EXPLAIN (insert {a | b})", &[]);
        assert!(e.trace.is_empty());
        let text = e.render();
        assert!(text.contains("statement: (insert {A1 | A2})"), "{text}");
        assert!(text.contains("(empty trace)"), "{text}");
    }
}
