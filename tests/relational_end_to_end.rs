//! End-to-end tests of the §5 relational extension: grounding, the
//! null store, semantic resolution, and the extended where/insert — all
//! cross-validated against the grounded possible-worlds semantics.

use pwdb::relational::{
    grounded_some_value_wff,
    update::{execute_where_insert, find_bindings, ArgSpec},
    CategoryExpr, Condition, ConstantDictionary, ExtendedInsert, NullStore, RelSchema, SymRef,
    TypeAlgebra, TypeExpr,
};
use pwdb::worlds::WorldSet;

fn personnel() -> (RelSchema, pwdb::relational::schema::RelId) {
    let mut a = TypeAlgebra::new();
    let person = a.add_type("person", &["jones", "smith"]);
    let dept = a.add_type("dept", &["sales", "hr"]);
    let telno = a.add_type("telno", &["t1", "t2", "t3"]);
    let mut s = RelSchema::new(a);
    let r = s.add_relation("R", vec![person, dept, telno]);
    (s, r)
}

#[test]
fn grounding_size_is_typed_product() {
    let (s, _r) = personnel();
    let g = s.ground();
    assert_eq!(g.n_atoms(), 2 * 2 * 3);
}

#[test]
fn jones_pipeline_against_grounded_semantics() {
    let (s, r) = personnel();
    let g = s.ground();
    let a = s.algebra();
    let jones = a.constant("jones").unwrap();
    let sales = a.constant("sales").unwrap();
    let t1 = a.constant("t1").unwrap();

    let mut store = NullStore::new();
    store.add_fact(
        r,
        vec![
            SymRef::External(jones),
            SymRef::External(sales),
            SymRef::External(t1),
        ],
    );

    // Extended update: Jones has a new (unknown) phone.
    let telno_expr = TypeExpr::Base(s.algebra().type_id("telno").unwrap());
    let insert = ExtendedInsert {
        rel: r,
        args: vec![
            ArgSpec::Var("x".into()),
            ArgSpec::Var("y".into()),
            ArgSpec::Exists(telno_expr),
        ],
    };
    let conditions = vec![
        Condition::Eq("x".into(), jones),
        Condition::InType("y".into(), TypeExpr::Universe),
    ];
    assert_eq!(
        find_bindings(&store, &s, r, &insert.args, &conditions).len(),
        1
    );
    execute_where_insert(&mut store, &s, &insert, &conditions);

    let store_worlds = store.worlds(&s, &g);
    assert_eq!(store_worlds.len(), 3);

    // Cross-check against the grounded mask–assert update: store worlds
    // must be exactly the single-phone worlds of the HLU result.
    let n = g.n_atoms();
    let disj = grounded_some_value_wff(&s, &g, r, &[Some(jones), Some(sales), None]);
    let initial = {
        let mut st = NullStore::new();
        st.add_fact(
            r,
            vec![
                SymRef::External(jones),
                SymRef::External(sales),
                SymRef::External(t1),
            ],
        );
        st.worlds(&s, &g)
    };
    let dep = WorldSet::from_wff(n, &disj).dep();
    let hlu = initial
        .saturate_all(&dep)
        .intersect(&WorldSet::from_wff(n, &disj));
    assert!(store_worlds.is_subset(&hlu));

    // The HLU result, restricted to worlds with exactly one Jones-phone
    // fact, is the store result.
    let phone_atoms: Vec<pwdb::logic::AtomId> = (0..3)
        .map(|i| {
            let t = s.algebra().constant(&format!("t{}", i + 1)).unwrap();
            g.atom(r, &[jones, sales, t]).unwrap()
        })
        .collect();
    let mut single_phone = WorldSet::empty(n);
    for w in hlu.iter() {
        let count = phone_atoms.iter().filter(|a| w.get(**a)).count();
        if count == 1 {
            single_phone.insert(w);
        }
    }
    assert_eq!(store_worlds, single_phone);
}

#[test]
fn dictionary_narrowing_interacts_with_store_worlds() {
    let (s, r) = personnel();
    let g = s.ground();
    let a = s.algebra();
    let jones = a.constant("jones").unwrap();
    let sales = a.constant("sales").unwrap();
    let t2 = a.constant("t2").unwrap();
    let telno_expr = TypeExpr::Base(a.type_id("telno").unwrap());

    let mut store = NullStore::new();
    let u = store
        .dictionary_mut()
        .activate(CategoryExpr::of_type(telno_expr));
    store.add_fact(r, vec![SymRef::External(jones), SymRef::External(sales), u]);
    assert_eq!(store.worlds(&s, &g).len(), 3);

    // Learning "not t2" narrows the null via an exclusion exception.
    let SymRef::Internal(id) = u else {
        unreachable!()
    };
    let entry = store.dictionary().entry(id).clone();
    store.dictionary_mut().narrow(
        id,
        CategoryExpr {
            ee: vec![SymRef::External(t2)],
            ..entry
        },
    );
    assert_eq!(store.worlds(&s, &g).len(), 2);
}

#[test]
fn semantic_resolution_narrows_against_store_facts() {
    use pwdb::relational::unify::{semantic_resolvent, SymLiteral};
    let (s, r) = personnel();
    let a = s.algebra();
    let mut dict = ConstantDictionary::new();
    let telno_expr = TypeExpr::Base(a.type_id("telno").unwrap());
    let u = dict.activate(CategoryExpr::of_type(telno_expr));
    let jones = SymRef::External(a.constant("jones").unwrap());
    let sales = SymRef::External(a.constant("sales").unwrap());
    let t3 = SymRef::External(a.constant("t3").unwrap());

    // Fact clause: R(jones, sales, u). Query clause: ¬R(jones, sales, t3)
    // (is t3 Jones' phone?). They resolve, and the unifier pins u = t3.
    let fact = vec![SymLiteral {
        positive: true,
        rel: r,
        args: vec![jones, sales, u],
    }];
    let query = vec![SymLiteral {
        positive: false,
        rel: r,
        args: vec![jones, sales, t3],
    }];
    let (resolvent, unifier) = semantic_resolvent(a, &dict, &fact, &query, 0, 0).unwrap();
    assert!(resolvent.is_empty(), "complete refutation");
    assert_eq!(unifier[2].count_ones(), 1);
    // The unifier's third position is exactly {t3}.
    let SymRef::External(t3_id) = t3 else {
        unreachable!()
    };
    assert_eq!(unifier[2], 1u64 << t3_id);
}

#[test]
fn ill_typed_existential_yields_no_worlds() {
    let (s, r) = personnel();
    let g = s.ground();
    let a = s.algebra();
    let jones = a.constant("jones").unwrap();
    let sales = a.constant("sales").unwrap();
    // A null typed "person" in the telephone position can never valuate
    // to a well-typed fact.
    let person_expr = TypeExpr::Base(a.type_id("person").unwrap());
    let mut store = NullStore::new();
    let bad = store
        .dictionary_mut()
        .activate(CategoryExpr::of_type(person_expr));
    store.add_fact(
        r,
        vec![SymRef::External(jones), SymRef::External(sales), bad],
    );
    assert!(store.worlds(&s, &g).is_empty());
}

#[test]
fn grounded_wff_matches_domain_size() {
    let (s, r) = personnel();
    let g = s.ground();
    let a = s.algebra();
    let smith = a.constant("smith").unwrap();
    let hr = a.constant("hr").unwrap();
    let w = grounded_some_value_wff(&s, &g, r, &[Some(smith), Some(hr), None]);
    assert_eq!(w.props().len(), 3);
    // All disjuncts mention smith and hr.
    for atom in w.props() {
        let name = g.table().name(atom).unwrap();
        assert!(name.contains("smith") && name.contains("hr"), "{name}");
    }
}
